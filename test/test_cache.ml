(* Engine.Cache + Prelude.Zipf + Workload.Exp_cache: property tests for
   the Zipf sampler, cross-backend cache invariants, metric determinism
   and the probe-cache failover interaction. *)

module Cache = Engine.Cache
module Probe = Engine.Probe
module Trace = Engine.Trace
module Metrics = Engine.Metrics
module Zipf = Prelude.Zipf
module Rng = Prelude.Rng
module Json = Prelude.Json

(* ------------------------------------------------------------------ *)
(* Zipf sampler properties                                             *)
(* ------------------------------------------------------------------ *)

let seed_gen = QCheck.int_range 0 100_000

let qcheck_zipf_deterministic =
  QCheck.Test.make ~name:"zipf: equal seeds draw identical sequences" ~count:50
    QCheck.(pair seed_gen (int_range 1 200))
    (fun (seed, n) ->
      let z = Zipf.create ~s:0.9 n in
      let draw () =
        let rng = Rng.create seed in
        Array.init 500 (fun _ -> Zipf.sample z rng)
      in
      draw () = draw ())

let qcheck_zipf_pmf_monotone =
  QCheck.Test.make ~name:"zipf: pmf is nonincreasing in rank" ~count:100
    QCheck.(pair (int_range 1 300) (float_range 0.0 3.0))
    (fun (n, s) ->
      let z = Zipf.create ~s n in
      let ok = ref true in
      for i = 1 to n - 1 do
        if Zipf.pmf z i > Zipf.pmf z (i - 1) +. 1e-12 then ok := false
      done;
      let total = ref 0.0 in
      for i = 0 to n - 1 do
        total := !total +. Zipf.pmf z i
      done;
      !ok && Float.abs (!total -. 1.0) < 1e-9 && Float.abs (Zipf.cdf z (n - 1) -. 1.0) < 1e-12)

let qcheck_zipf_rank_frequency =
  QCheck.Test.make ~name:"zipf: empirical head outdraws the tail" ~count:30
    QCheck.(pair seed_gen (int_range 8 128))
    (fun (seed, n) ->
      let z = Zipf.create ~s:1.0 n in
      let rng = Rng.create seed in
      let counts = Array.make n 0 in
      let samples = 5_000 in
      for _ = 1 to samples do
        let k = Zipf.sample z rng in
        counts.(k) <- counts.(k) + 1
      done;
      (* rank 0 carries >= 1/H_n of the mass, the tail rank 1/(n H_n):
         with 5k samples the head strictly outdraws the tail. *)
      counts.(0) > counts.(n - 1)
      && counts.(0) + counts.(1) > (counts.(n - 1) + counts.(n - 2)))

let qcheck_zipf_cdf_close =
  QCheck.Test.make ~name:"zipf: empirical CDF tracks the analytic CDF" ~count:20
    QCheck.(triple seed_gen (int_range 2 64) (float_range 0.0 2.0))
    (fun (seed, n, s) ->
      let z = Zipf.create ~s n in
      let rng = Rng.create seed in
      let samples = 20_000 in
      let counts = Array.make n 0 in
      for _ = 1 to samples do
        let k = Zipf.sample z rng in
        counts.(k) <- counts.(k) + 1
      done;
      let worst = ref 0.0 in
      let acc = ref 0 in
      for i = 0 to n - 1 do
        acc := !acc + counts.(i);
        let emp = float_of_int !acc /. float_of_int samples in
        worst := Float.max !worst (Float.abs (emp -. Zipf.cdf z i))
      done;
      (* Kolmogorov bound at 20k draws is ~0.010 at the 5% level; the
         seeds are fixed by qcheck, so 0.025 never flakes. *)
      !worst < 0.025)

let qcheck_zipf_uniform_at_zero =
  QCheck.Test.make ~name:"zipf: s = 0 degenerates to the uniform distribution" ~count:30
    QCheck.(pair seed_gen (int_range 1 64))
    (fun (seed, n) ->
      let z = Zipf.create ~s:0.0 n in
      let flat = ref true in
      for i = 0 to n - 1 do
        if Float.abs (Zipf.pmf z i -. (1.0 /. float_of_int n)) > 1e-9 then flat := false
      done;
      let rng = Rng.create seed in
      let samples = 8_000 in
      let counts = Array.make n 0 in
      for _ = 1 to samples do
        let k = Zipf.sample z rng in
        counts.(k) <- counts.(k) + 1
      done;
      let expect = float_of_int samples /. float_of_int n in
      let within = ref true in
      Array.iter
        (fun c ->
          if Float.abs (float_of_int c -. expect) > (5.0 *. Float.sqrt expect) +. 10.0 then
            within := false)
        counts;
      !flat && !within)

let test_zipf_validation () =
  Alcotest.check_raises "size 0" (Invalid_argument "Zipf.create: size must be positive")
    (fun () -> ignore (Zipf.create 0));
  Alcotest.check_raises "negative s"
    (Invalid_argument "Zipf.create: exponent must be finite and non-negative") (fun () ->
      ignore (Zipf.create ~s:(-1.0) 4));
  let z = Zipf.create ~s:1.0 4 in
  Alcotest.(check int) "size" 4 (Zipf.size z);
  Alcotest.(check bool) "exponent" true (Zipf.exponent z = 1.0)

(* ------------------------------------------------------------------ *)
(* Toy line backend for direct Engine.Cache tests                      *)
(* ------------------------------------------------------------------ *)

(* [n] nodes on a line, latency 10 ms per unit.  [down] nodes stay
   members (their copies stay listed) but are unroutable — the crash
   shape that exercises failover pruning. *)
let line_backend ?(down = fun _ -> false) ?(gone = fun _ -> false) n =
  let link u v = 10.0 *. Float.abs (float_of_int (u - v)) in
  let route_to ~src ~dst =
    if gone dst || down dst then None
    else begin
      let step = if dst >= src then 1 else -1 in
      let rec go acc u = if u = dst then List.rev (u :: acc) else go (u :: acc) (u + step) in
      Some (go [] src)
    end
  in
  let near ~node ~exclude =
    let best = ref None in
    for c = 0 to n - 1 do
      if c <> node && (not (gone c)) && (not (down c)) && not (List.mem c exclude) then begin
        let d = Float.abs (float_of_int (c - node)) in
        match !best with
        | Some (bd, _) when bd <= d -> ()
        | _ -> best := Some (d, c)
      end
    done;
    Option.map snd !best
  in
  ( link,
    {
      Cache.name = "line";
      member = (fun i -> i >= 0 && i < n && not (gone i));
      home_of = (fun key -> key mod n);
      route_to;
      near;
      publish_load = (fun ~node:_ ~load:_ -> ());
    } )

let drive ?metrics ?trace ?rtt ~replicas ~threshold ~n reqs =
  let link, backend = line_backend n in
  let cache =
    Cache.create ?metrics ?trace ?rtt
      ~config:
        { Cache.default_config with Cache.replicas; load_threshold = threshold; hot_keys = 2 }
      ~link backend
  in
  List.iter (fun (client, key) -> ignore (Cache.request cache ~client ~key)) reqs;
  cache

let random_reqs seed ~n ~universe ~count =
  let rng = Rng.create seed in
  let z = Zipf.create ~s:1.1 universe in
  List.init count (fun _ -> (Rng.int rng n, Zipf.sample z rng))

(* Deterministic multiset-preserving reshuffle. *)
let reshuffle seed l =
  let a = Array.of_list l in
  let rng = Rng.create (seed + 7) in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let qcheck_hit_rate_order_independent =
  QCheck.Test.make ~name:"cache: hit/miss counts are order-independent" ~count:40
    QCheck.(pair seed_gen (int_range 1 3))
    (fun (seed, replicas) ->
      let n = 16 in
      let reqs = random_reqs seed ~n ~universe:40 ~count:300 in
      let a = drive ~replicas ~threshold:5 ~n reqs in
      let b = drive ~replicas ~threshold:5 ~n (reshuffle seed reqs) in
      Cache.hits a = Cache.hits b
      && Cache.misses a = Cache.misses b
      && Cache.requests a = Cache.requests b)

let qcheck_replication_bounded =
  QCheck.Test.make ~name:"cache: copies per key never exceed the replica bound" ~count:40
    QCheck.(pair seed_gen (int_range 1 4))
    (fun (seed, replicas) ->
      let n = 12 in
      let reqs = random_reqs seed ~n ~universe:24 ~count:400 in
      let c = drive ~replicas ~threshold:3 ~n reqs in
      Cache.check_invariants c = Ok ()
      && List.for_all
           (fun key -> List.length (Cache.replicas_of c key) <= replicas)
           (Cache.stored_keys c)
      && (replicas > 1 || Cache.replications c = 0))

let test_replicas_one_is_inert () =
  (* With replicas = 1 the replication plane must be fully inert: no
     copies, no sheds, no Cache_replicate spans, no publish_load calls. *)
  let n = 10 in
  let published = ref 0 in
  let link, backend = line_backend n in
  let backend =
    { backend with Cache.publish_load = (fun ~node:_ ~load:_ -> incr published) }
  in
  let trace = Trace.create () in
  let cache =
    Cache.create ~trace
      ~config:{ Cache.default_config with Cache.replicas = 1; load_threshold = 2 }
      ~link backend
  in
  let reqs = random_reqs 5 ~n ~universe:12 ~count:200 in
  List.iter (fun (client, key) -> ignore (Cache.request cache ~client ~key)) reqs;
  Alcotest.(check int) "no replications" 0 (Cache.replications cache);
  Alcotest.(check int) "no sheds" 0 (Cache.sheds cache);
  Alcotest.(check int) "no publish_load calls" 0 !published;
  List.iter
    (fun key ->
      Alcotest.(check int)
        (Printf.sprintf "key %d single copy" key)
        1
        (List.length (Cache.replicas_of cache key)))
    (Cache.stored_keys cache);
  let replicate_spans =
    List.filter (fun s -> s.Trace.kind = Trace.Cache_replicate) (Trace.spans trace)
  in
  Alcotest.(check int) "no Cache_replicate spans" 0 (List.length replicate_spans);
  let request_spans =
    List.filter (fun s -> s.Trace.kind = Trace.Cache_request) (Trace.spans trace)
  in
  Alcotest.(check int) "one span per request" (Cache.requests cache)
    (List.length request_spans)

let test_shed_avoids_hot_replica () =
  (* Two copies; the RTT-nearest one is saturated past the threshold, so
     the request sheds to the farther, cool copy and is counted. *)
  let n = 8 in
  let link, backend = line_backend n in
  let cache =
    Cache.create
      ~config:{ Cache.default_config with Cache.replicas = 2; load_threshold = 3 }
      ~link backend
  in
  (* key 1 homes at node 1; saturate node 1 from its own neighborhood. *)
  ignore (Cache.request cache ~client:0 ~key:1);
  ignore (Cache.request cache ~client:0 ~key:1);
  ignore (Cache.request cache ~client:2 ~key:1);
  (* threshold crossed: hot key 1 replicated to near node 0. *)
  Alcotest.(check bool) "replicated" true (Cache.replications cache >= 1);
  Alcotest.(check int) "two copies" 2 (List.length (Cache.replicas_of cache 1));
  (* From node 2 the hot home (node 1, 10 ms) is nearer than the cool
     replica (node 0, 20 ms): the request sheds to the replica. *)
  let o = Cache.request cache ~client:2 ~key:1 in
  Alcotest.(check bool) "request shed off the hot nearest copy" true o.Cache.shed;
  Alcotest.(check bool) "served by the cool copy" true (o.Cache.served_by <> 1);
  Alcotest.(check int) "shed counted" 1 (Cache.sheds cache)

(* ------------------------------------------------------------------ *)
(* Probe-plane interaction: invalidated RTTs and failover              *)
(* ------------------------------------------------------------------ *)

(* Shared scenario for the probe-cache interaction tests: key 5 homes at
   node 5; client 3 drives it hot so a replica lands on node 4, which
   then becomes the client's RTT-nearest copy.  Returns the cache, the
   prober and the crash table. *)
let probe_scenario ~crash_aware =
  let n = 8 in
  let crashed = Hashtbl.create 4 in
  let link, backend = line_backend ~down:(Hashtbl.mem crashed) n in
  let prober =
    Probe.create
      ~config:{ Probe.default_config with Probe.cache_ttl = 1_000_000.0 }
      ~measure:link ()
  in
  let rtt ~src ~dst =
    if crash_aware && Hashtbl.mem crashed dst then None
    else match Probe.rtt prober ~src ~dst with Ok r -> Some r | Error _ -> None
  in
  let cache =
    Cache.create ~rtt
      ~config:{ Cache.default_config with Cache.replicas = 2; load_threshold = 2 }
      ~link backend
  in
  for _ = 1 to 4 do
    ignore (Cache.request cache ~client:3 ~key:5)
  done;
  Alcotest.(check (list int)) "copies: home then near replica" [ 5; 4 ]
    (Cache.replicas_of cache 5);
  let o = Cache.request cache ~client:3 ~key:5 in
  Alcotest.(check int) "nearest replica serves before the crash" 4 o.Cache.served_by;
  (cache, prober, crashed)

let test_probe_failover () =
  (* Crash the nearest replica and invalidate its RTT entries: the next
     read ranks the dead copy last (no cached RTT survives, the probe
     fails) and goes straight to the surviving copy — no wasted routing
     attempt, so no failover is even counted. *)
  let cache, prober, crashed = probe_scenario ~crash_aware:true in
  let hits_before = Probe.cache_hits prober in
  ignore (Cache.request cache ~client:3 ~key:5);
  Alcotest.(check bool) "replica ranking reuses cached RTTs" true
    (Probe.cache_hits prober > hits_before);
  Hashtbl.replace crashed 4 ();
  Probe.invalidate prober 4;
  let o = Cache.request cache ~client:3 ~key:5 in
  Alcotest.(check int) "read fails over to the surviving copy" 5 o.Cache.served_by;
  Alcotest.(check bool) "served as a hit, not a refetch" true o.Cache.hit;
  Alcotest.(check int) "no routing attempt wasted on the dead copy" 0
    (Cache.failovers cache);
  let o2 = Cache.request cache ~client:3 ~key:5 in
  Alcotest.(check int) "stable after failover" 5 o2.Cache.served_by

let test_stale_rtt_costs_a_failover () =
  (* Same crash without invalidation/crash awareness: the probe cache
     keeps serving the dead replica's stale RTT, ranking it first; the
     routing attempt fails, the copy is pruned and the request pays a
     counted failover — exactly the waste Probe.invalidate removes. *)
  let cache, _prober, crashed = probe_scenario ~crash_aware:false in
  Hashtbl.replace crashed 4 ();
  let o = Cache.request cache ~client:3 ~key:5 in
  Alcotest.(check int) "still served by the survivor" 5 o.Cache.served_by;
  Alcotest.(check bool) "but as a counted failover" true (Cache.failovers cache >= 1);
  Alcotest.(check bool) "dead copy pruned from the holder list" true
    (not (List.mem 4 (Cache.replicas_of cache 5)))

let test_failover_to_origin () =
  (* Every copy of a key unroutable: the request refetches from the
     origin at the key's home and reinstalls the copy there. *)
  let n = 6 in
  let crashed = Hashtbl.create 4 in
  let link, backend = line_backend ~down:(Hashtbl.mem crashed) n in
  let cache = Cache.create ~link backend in
  ignore (Cache.request cache ~client:0 ~key:2);
  Alcotest.(check (list int)) "copy at home" [ 2 ] (Cache.replicas_of cache 2);
  Hashtbl.replace crashed 2 ();
  Alcotest.check_raises "home down means unroutable origin"
    (Failure "Cache.request: key home unroutable") (fun () ->
      ignore (Cache.request cache ~client:0 ~key:2));
  Hashtbl.reset crashed;
  let o = Cache.request cache ~client:0 ~key:2 in
  Alcotest.(check bool) "refetched as a miss" true (not o.Cache.hit)

(* ------------------------------------------------------------------ *)
(* Experiment-level invariants (shared schedule across backends)       *)
(* ------------------------------------------------------------------ *)

let exp_scale = 32

let qcheck_cross_backend =
  QCheck.Test.make ~name:"exp_cache: all backends see the same key multiset & hit rate"
    ~count:3
    (QCheck.int_range 1 1_000)
    (fun seed ->
      let stats = Workload.Exp_cache.data ~scale:exp_scale ~seed () in
      match stats with
      | first :: rest ->
        List.for_all
          (fun (s : Workload.Exp_cache.stats) ->
            s.Workload.Exp_cache.key_digest = first.Workload.Exp_cache.key_digest
            && s.Workload.Exp_cache.hit_rate = first.Workload.Exp_cache.hit_rate
            && s.Workload.Exp_cache.requests = first.Workload.Exp_cache.requests)
          rest
        && List.length stats = 7
      | [] -> false)

let test_exp_cache_ordering () =
  (* Deterministic seed: topology-aware tables beat random tables on the
     delivered latency at the same hit rate, and replication reduces the
     max per-node load vs replicas = 1. *)
  match Workload.Exp_cache.data ~scale:exp_scale () with
  | [ aware; random; _can; _chord; _pastry; _koorde; norepl ] ->
    let open Workload.Exp_cache in
    Alcotest.(check bool) "equal hit rates" true (aware.hit_rate = random.hit_rate);
    Alcotest.(check bool) "aware p50 <= random p50" true (aware.p50_ms <= random.p50_ms);
    Alcotest.(check bool) "aware p99 <= random p99" true (aware.p99_ms <= random.p99_ms);
    Alcotest.(check bool) "replication never raises max load" true
      (aware.max_load <= norepl.max_load);
    Alcotest.(check bool) "replication plane ran" true (aware.replications > 0);
    Alcotest.(check int) "replicas=1 row is replication-free" 0 norepl.replications
  | _ -> Alcotest.fail "exp_cache: expected 7 rows"

let test_exp_cache_metrics_deterministic () =
  (* Same seed, fresh registries: the whole metrics dump (counters,
     gauges, histograms) is byte-identical across runs. *)
  let dump () =
    let metrics = Metrics.create () in
    let stats = Workload.Exp_cache.data ~scale:exp_scale ~metrics () in
    (stats, Json.to_string (Metrics.to_json metrics))
  in
  let stats1, json1 = dump () in
  let stats2, json2 = dump () in
  Alcotest.(check bool) "stats identical" true (stats1 = stats2);
  Alcotest.(check string) "metrics registry byte-identical" json1 json2;
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "cache instruments registered" true
    (contains "cache_hits" json1
    && contains "cache_request_ms" json1
    && contains "cache_replications" json1)

let suite =
  [
    Alcotest.test_case "zipf validation" `Quick test_zipf_validation;
    Alcotest.test_case "replicas=1 replication plane inert" `Quick test_replicas_one_is_inert;
    Alcotest.test_case "load shedding avoids hot replica" `Quick test_shed_avoids_hot_replica;
    Alcotest.test_case "probe invalidation drives failover" `Quick test_probe_failover;
    Alcotest.test_case "stale RTT cache costs a failover" `Quick test_stale_rtt_costs_a_failover;
    Alcotest.test_case "all copies down refetches origin" `Quick test_failover_to_origin;
    Alcotest.test_case "exp: aware beats random, replication flattens load" `Slow
      test_exp_cache_ordering;
    Alcotest.test_case "exp: metrics byte-identical across same-seed runs" `Slow
      test_exp_cache_metrics_deterministic;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_zipf_deterministic;
        qcheck_zipf_pmf_monotone;
        qcheck_zipf_rank_frequency;
        qcheck_zipf_cdf_close;
        qcheck_zipf_uniform_at_zero;
        qcheck_hit_rate_order_independent;
        qcheck_replication_bounded;
        qcheck_cross_backend;
      ]
