(* Tests for the Chord ring. *)

module Ring = Chord.Ring
module Rng = Prelude.Rng

let random_selector rng ~node:_ ~arc:_ ~candidates = Some (Rng.pick rng candidates)

let build ~n ~seed =
  let rng = Rng.create seed in
  let t = Ring.create () in
  for id = 0 to n - 1 do
    Ring.add_node t ~rng id
  done;
  let sel = Rng.create (seed + 1) in
  Ring.build_fingers t ~selector:(random_selector sel);
  (t, Rng.create (seed + 2))

let check_ok = function Ok () -> () | Error e -> Alcotest.fail e

let test_membership () =
  let t, _ = build ~n:50 ~seed:1 in
  Alcotest.(check int) "size" 50 (Ring.size t);
  Alcotest.(check bool) "member" true (Ring.mem t 7);
  Alcotest.(check bool) "non-member" false (Ring.mem t 99);
  Alcotest.(check int) "node_ids count" 50 (Array.length (Ring.node_ids t))

let test_duplicate_rejected () =
  let t, _ = build ~n:3 ~seed:2 in
  let rng = Rng.create 0 in
  Alcotest.check_raises "dup" (Invalid_argument "Chord.add_node: already a member") (fun () ->
      Ring.add_node t ~rng 1)

let test_successor_owns_own_key () =
  let t, _ = build ~n:40 ~seed:3 in
  Array.iter
    (fun id ->
      Alcotest.(check int) "successor of own key is self" id
        (Ring.successor_node t (Ring.key_of t id)))
    (Ring.node_ids t)

let test_successor_wraps () =
  let t, _ = build ~n:10 ~seed:4 in
  (* key beyond the largest member key wraps to the smallest *)
  let keys = Array.map (Ring.key_of t) (Ring.node_ids t) in
  Array.sort compare keys;
  let largest = keys.(Array.length keys - 1) in
  let smallest_owner = Ring.successor_node t 0 in
  Alcotest.(check int) "wraps" smallest_owner (Ring.successor_node t (largest + 1))

let test_arc_members () =
  let t, _ = build ~n:64 ~seed:5 in
  let ring = 1 lsl Ring.key_bits t in
  (* The full ring (two half arcs) covers everyone exactly once. *)
  let half = ring / 2 in
  let a = Ring.arc_members t ~lo:0 ~span:half in
  let b = Ring.arc_members t ~lo:half ~span:half in
  Alcotest.(check int) "halves partition" 64 (Array.length a + Array.length b);
  (* Each member of an arc really falls inside it. *)
  Array.iter
    (fun id ->
      let k = Ring.key_of t id in
      Alcotest.(check bool) "inside arc" true (k >= 0 && k < half))
    a

let test_arc_members_wrap () =
  let t, _ = build ~n:64 ~seed:6 in
  let ring = 1 lsl Ring.key_bits t in
  let lo = ring - 100 in
  let members = Ring.arc_members t ~lo ~span:200 in
  Array.iter
    (fun id ->
      let k = Ring.key_of t id in
      Alcotest.(check bool) "wrapped arc member" true (k >= lo || k < 100))
    members

let test_fingers_in_arcs () =
  let t, _ = build ~n:100 ~seed:7 in
  check_ok (Ring.check_invariants t)

let test_remove_node () =
  let t, rng = build ~n:60 ~seed:10 in
  let victims = Rng.sample rng 20 (Ring.node_ids t) in
  Array.iter (fun id -> Ring.remove_node t id) victims;
  Alcotest.(check int) "size" 40 (Ring.size t);
  check_ok (Ring.check_invariants t);
  (* routing still works after finger cleanup (no rebuild needed thanks to
     successor fallback) *)
  let ids = Ring.node_ids t in
  for _ = 1 to 50 do
    let key = Rng.int rng (1 lsl Ring.key_bits t) in
    match Ring.route t ~src:(Rng.pick rng ids) ~key with
    | None -> Alcotest.fail "routing failed after removals"
    | Some hops ->
      Alcotest.(check int) "owner reached" (Ring.successor_node t key)
        (List.nth hops (List.length hops - 1))
  done

let test_single_node_ring () =
  let rng = Rng.create 11 in
  let t = Ring.create () in
  Ring.add_node t ~rng 42;
  Alcotest.(check int) "owns all keys" 42 (Ring.successor_node t 12345);
  Alcotest.(check (option (list int))) "self route" (Some [ 42 ]) (Ring.route t ~src:42 ~key:7)

(* Generic routing/owner/log-hop properties live in the shared
   backend-conformance suite (test_conformance.ml). *)
let suite =
  [
    Alcotest.test_case "membership" `Quick test_membership;
    Alcotest.test_case "duplicate rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "successor of own key" `Quick test_successor_owns_own_key;
    Alcotest.test_case "successor wraps" `Quick test_successor_wraps;
    Alcotest.test_case "arc membership" `Quick test_arc_members;
    Alcotest.test_case "arc membership wraps" `Quick test_arc_members_wrap;
    Alcotest.test_case "fingers live in arcs" `Quick test_fingers_in_arcs;
    Alcotest.test_case "node removal" `Quick test_remove_node;
    Alcotest.test_case "single-node ring" `Quick test_single_node_ring;
  ]
