(* Tests for the nearest-neighbor search algorithms. *)

module Search = Proximity.Search
module Oracle = Topology.Oracle
module Ts = Topology.Transit_stub
module Can_overlay = Can.Overlay
module Landmarks = Landmark.Landmarks
module Point = Geometry.Point
module Rng = Prelude.Rng

let topo_params =
  {
    Ts.transit_domains = 3;
    transit_nodes_per_domain = 2;
    stubs_per_transit_node = 2;
    stub_size = 12;
    extra_domain_edges = 2;
    extra_edge_fraction = 0.4;
    latency = Ts.Manual;
  }

(* Oracle + a CAN of the whole topology + landmark vectors, as in the
   paper's §4 evaluation setting. *)
let setup ~seed =
  let rng = Rng.create seed in
  let topo = Ts.generate rng topo_params in
  let oracle = Oracle.build topo in
  let n = Oracle.node_count oracle in
  let can = Can_overlay.create ~dims:2 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join can id (Point.random rng 2))
  done;
  let lms = Landmarks.choose rng oracle 6 in
  let vectors = Array.init n (fun node -> Landmarks.vector lms node) in
  (oracle, can, vectors, Rng.create (seed + 1))

let all_nodes oracle = Array.init (Oracle.node_count oracle) (fun i -> i)

let test_true_nearest () =
  let oracle, _, _, _ = setup ~seed:1 in
  let node, d = Search.true_nearest oracle ~query:5 ~candidates:(all_nodes oracle) in
  Alcotest.(check bool) "not self" true (node <> 5);
  Alcotest.(check bool) "positive distance" true (d > 0.0);
  (* brute force agreement *)
  let brute = ref infinity in
  Array.iter
    (fun v -> if v <> 5 then brute := Float.min !brute (Oracle.dist oracle 5 v))
    (all_nodes oracle);
  Alcotest.(check (float 1e-12)) "matches brute force" !brute d

let test_curves_monotone_nonincreasing () =
  let oracle, can, vectors, rng = setup ~seed:2 in
  for _ = 1 to 5 do
    let query = Rng.int rng (Oracle.node_count oracle) in
    let check name (curve : Search.curve) =
      let d = curve.Search.dist in
      for i = 1 to Array.length d - 1 do
        Alcotest.(check bool) (name ^ " best-so-far never worsens") true (d.(i) <= d.(i - 1))
      done
    in
    check "ers" (Search.ers_curve oracle can ~query ~budget:40);
    check "hybrid"
      (Search.hybrid_curve oracle
         ~vector_of:(fun v -> vectors.(v))
         ~candidates:(all_nodes oracle) ~query ~budget:40)
  done

let test_measurement_accounting () =
  let oracle, can, _, _ = setup ~seed:3 in
  Oracle.reset_measurements oracle;
  let curve = Search.ers_curve oracle can ~query:0 ~budget:25 in
  Alcotest.(check int) "exactly budget measurements" (Array.length curve.Search.dist)
    (Oracle.measurements oracle);
  Alcotest.(check bool) "budget respected" true (Array.length curve.Search.dist <= 25)

let test_hybrid_converges_to_optimum () =
  (* With an exhaustive budget the hybrid must find the true nearest. *)
  let oracle, _, vectors, rng = setup ~seed:4 in
  let candidates = all_nodes oracle in
  for _ = 1 to 5 do
    let query = Rng.int rng (Oracle.node_count oracle) in
    let _, optimal = Search.true_nearest oracle ~query ~candidates in
    let curve =
      Search.hybrid_curve oracle
        ~vector_of:(fun v -> vectors.(v))
        ~candidates ~query
        ~budget:(Array.length candidates)
    in
    let final = curve.Search.dist.(Array.length curve.Search.dist - 1) in
    Alcotest.(check (float 1e-9)) "exhaustive hybrid finds the optimum" optimal final
  done

let test_hybrid_beats_ers_at_small_budget () =
  (* The headline §4 claim: at a small measurement budget the hybrid's
     stretch beats blind expanding-ring search (averaged over queries). *)
  let oracle, can, vectors, rng = setup ~seed:5 in
  let candidates = all_nodes oracle in
  let budget = 8 in
  let queries = 30 in
  let total_ers = ref 0.0 and total_hyb = ref 0.0 in
  for _ = 1 to queries do
    let query = Rng.int rng (Oracle.node_count oracle) in
    let _, optimal = Search.true_nearest oracle ~query ~candidates in
    let last (c : Search.curve) = c.Search.dist.(Array.length c.Search.dist - 1) in
    let ers = last (Search.ers_curve oracle can ~query ~budget) in
    let hyb =
      last (Search.hybrid_curve oracle ~vector_of:(fun v -> vectors.(v)) ~candidates ~query ~budget)
    in
    if optimal > 0.0 then begin
      total_ers := !total_ers +. (ers /. optimal);
      total_hyb := !total_hyb +. (hyb /. optimal)
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "hybrid stretch %.2f < ers stretch %.2f" !total_hyb !total_ers)
    true
    (!total_hyb < !total_ers)

let test_ers_explores_rings () =
  let oracle, can, _, _ = setup ~seed:6 in
  (* first probes must be the query's direct CAN neighbors, in id order *)
  let query = 0 in
  let curve = Search.ers_curve oracle can ~query ~budget:3 in
  let neighbors = List.sort compare (Can_overlay.node can query).Can_overlay.neighbors in
  Oracle.reset_measurements oracle;
  let expected_first = List.hd neighbors in
  (* probing in ring order means found.(0) is the first neighbor *)
  Alcotest.(check int) "first probe is the first neighbor" expected_first
    (let d0 = Oracle.dist oracle query expected_first in
     if Float.abs (curve.Search.dist.(0) -. d0) < 1e-9 then expected_first else -1)

let test_stretch_curve () =
  let curve = { Search.found = [| 1; 2 |]; dist = [| 10.0; 5.0 |]; elapsed = 0.0 } in
  Alcotest.(check (array (float 1e-9))) "stretch" [| 2.0; 1.0 |]
    (Search.stretch_curve curve ~optimal:5.0)

let test_curves_window_invariant () =
  (* Draining the probes through the probe plane must never change what a
     curve finds — any window only re-prices the wall-clock. *)
  let oracle, can, vectors, rng = setup ~seed:8 in
  let candidates = all_nodes oracle in
  let prober window =
    Engine.Probe.create
      ~config:{ Engine.Probe.default_config with Engine.Probe.window }
      ~measure:(Oracle.measure oracle) ()
  in
  for _ = 1 to 3 do
    let query = Rng.int rng (Oracle.node_count oracle) in
    let check name plain (curve_of : prober:Engine.Probe.t -> Search.curve) =
      let seq = curve_of ~prober:(prober 1) in
      let con = curve_of ~prober:(prober 8) in
      Alcotest.(check (array int)) (name ^ ": window 1 finds as without prober")
        plain.Search.found seq.Search.found;
      Alcotest.(check (array (float 0.0))) (name ^ ": window 1 prices as without prober")
        plain.Search.dist seq.Search.dist;
      Alcotest.(check (float 1e-9)) (name ^ ": unpriced = window-1 wall-clock")
        plain.Search.elapsed seq.Search.elapsed;
      Alcotest.(check (array int)) (name ^ ": window invariant") seq.Search.found con.Search.found;
      Alcotest.(check bool) (name ^ ": wider window is never slower") true
        (con.Search.elapsed <= seq.Search.elapsed)
    in
    check "ers"
      (Search.ers_curve oracle can ~query ~budget:20)
      (fun ~prober -> Search.ers_curve ~prober oracle can ~query ~budget:20);
    check "hybrid"
      (Search.hybrid_curve oracle ~vector_of:(fun v -> vectors.(v)) ~candidates ~query ~budget:20)
      (fun ~prober ->
        Search.hybrid_curve ~prober oracle
          ~vector_of:(fun v -> vectors.(v))
          ~candidates ~query ~budget:20)
  done

let test_rejects_bad_budget () =
  let oracle, can, _, _ = setup ~seed:7 in
  Alcotest.check_raises "budget 0" (Invalid_argument "Search.ers_curve: budget must be >= 1")
    (fun () -> ignore (Search.ers_curve oracle can ~query:0 ~budget:0))

let suite =
  [
    Alcotest.test_case "true nearest = brute force" `Quick test_true_nearest;
    Alcotest.test_case "curves are monotone" `Quick test_curves_monotone_nonincreasing;
    Alcotest.test_case "measurement accounting" `Quick test_measurement_accounting;
    Alcotest.test_case "exhaustive hybrid is optimal" `Quick test_hybrid_converges_to_optimum;
    Alcotest.test_case "hybrid beats ERS at small budgets" `Slow test_hybrid_beats_ers_at_small_budget;
    Alcotest.test_case "ers explores rings" `Quick test_ers_explores_rings;
    Alcotest.test_case "stretch curve arithmetic" `Quick test_stretch_curve;
    Alcotest.test_case "curves are probe-window invariant" `Quick test_curves_window_invariant;
    Alcotest.test_case "budget validation" `Quick test_rejects_bad_budget;
  ]
