(* Tests for the observability layer: Engine.Metrics registry semantics,
   deterministic JSON output, and the Engine.Trace ring buffer. *)

module Metrics = Engine.Metrics
module Trace = Engine.Trace
module Json = Prelude.Json
module Rng = Prelude.Rng

(* ---- registry semantics ---- *)

let test_interning () =
  let m = Metrics.create () in
  let c1 = Metrics.counter m ~labels:[ ("a", "1"); ("b", "2") ] "reqs" in
  let c2 = Metrics.counter m ~labels:[ ("b", "2"); ("a", "1") ] "reqs" in
  Metrics.incr c1;
  Metrics.incr c2;
  (* Label order is canonicalized: both handles are the same instrument. *)
  Alcotest.(check int) "same instrument" 2 (Metrics.count c1);
  Alcotest.(check int) "one registered" 1 (Metrics.size m);
  let c3 = Metrics.counter m ~labels:[ ("a", "1") ] "reqs" in
  Metrics.incr c3;
  Alcotest.(check int) "different labels, different counter" 1 (Metrics.count c3);
  Alcotest.(check int) "two registered" 2 (Metrics.size m)

let test_kind_mismatch () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.(check bool) "re-registering as a gauge raises" true
    (try
       ignore (Metrics.gauge m "x");
       false
     with Invalid_argument _ -> true)

let test_instruments () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.count c);
  let g = Metrics.gauge m "g" in
  Alcotest.(check (float 0.0)) "gauge starts 0" 0.0 (Metrics.value g);
  Metrics.set g 2.5;
  Metrics.set g 1.5;
  Alcotest.(check (float 0.0)) "gauge last write wins" 1.5 (Metrics.value g);
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.observe h) [ 3.0; 1.0; 2.0 ];
  Alcotest.(check int) "observations" 3 (Metrics.observations h);
  Alcotest.(check (array (float 0.0))) "samples in order" [| 3.0; 1.0; 2.0 |]
    (Metrics.samples h);
  Alcotest.(check (float 1e-9)) "hmean" 2.0 (Metrics.hmean h);
  Alcotest.(check (float 1e-9)) "median" 2.0 (Metrics.quantile h 50.0)

let test_reset () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.reset m;
  Alcotest.(check int) "empty after reset" 0 (Metrics.size m);
  (* Re-interning after reset starts fresh. *)
  Alcotest.(check int) "fresh counter" 0 (Metrics.count (Metrics.counter m "c"))

(* ---- determinism ---- *)

(* A seeded workload recorded into two fresh registries must serialize to
   the same bytes — the property [bench --json] regression baselines rely
   on. *)
let seeded_fill seed m =
  let rng = Rng.create seed in
  for i = 0 to 199 do
    let labels = [ ("shard", string_of_int (i mod 3)) ] in
    Metrics.incr (Metrics.counter m ~labels "events");
    Metrics.set (Metrics.gauge m ~labels "level") (Rng.float rng 10.0);
    Metrics.observe (Metrics.histogram m ~labels "lat") (Rng.float rng 100.0)
  done

let test_same_seed_identical_json () =
  let m1 = Metrics.create () and m2 = Metrics.create () in
  seeded_fill 77 m1;
  seeded_fill 77 m2;
  Alcotest.(check string) "byte-identical"
    (Json.to_string (Metrics.to_json m1))
    (Json.to_string (Metrics.to_json m2))

let test_registration_order_irrelevant () =
  (* Snapshot order is (name, labels), not registration order. *)
  let m1 = Metrics.create () and m2 = Metrics.create () in
  Metrics.incr (Metrics.counter m1 ~labels:[ ("k", "a") ] "n");
  Metrics.incr (Metrics.counter m1 ~labels:[ ("k", "b") ] "n");
  Metrics.incr (Metrics.counter m2 ~labels:[ ("k", "b") ] "n");
  Metrics.incr (Metrics.counter m2 ~labels:[ ("k", "a") ] "n");
  Alcotest.(check string) "same serialization"
    (Json.to_string (Metrics.to_json m1))
    (Json.to_string (Metrics.to_json m2))

(* ---- JSON schema round-trip ---- *)

let test_json_roundtrip () =
  let m = Metrics.create () in
  seeded_fill 13 m;
  let s = Json.to_string (Metrics.to_json m) in
  match Json.of_string s with
  | Error e -> Alcotest.failf "registry JSON does not parse: %s" e
  | Ok parsed ->
    (* print (parse (print m)) = print m: the printer's floats survive the
       decimal round trip. *)
    Alcotest.(check string) "print/parse fixpoint" s (Json.to_string parsed);
    (match Json.member "schema" parsed with
    | Some (Json.String v) ->
      Alcotest.(check string) "schema version" Metrics.schema_version v
    | _ -> Alcotest.fail "missing schema field");
    let section name =
      match Option.bind (Json.member name parsed) Json.to_list_opt with
      | Some l -> l
      | None -> Alcotest.failf "missing %s section" name
    in
    Alcotest.(check int) "counters" 3 (List.length (section "counters"));
    Alcotest.(check int) "gauges" 3 (List.length (section "gauges"));
    Alcotest.(check int) "histograms" 3 (List.length (section "histograms"));
    match section "histograms" with
    | h :: _ ->
      Alcotest.(check bool) "histogram has p99" true (Json.member "p99" h <> None)
    | [] -> Alcotest.fail "no histograms"

(* ---- quantile bounds (qcheck) ---- *)

let qcheck_quantile_bounds =
  QCheck.Test.make ~name:"histogram quantiles lie within [min, max] and are monotone"
    ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0)) (0 -- 100))
    (fun (xs, p) ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "q" in
      List.iter (Metrics.observe h) xs;
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      let q = Metrics.quantile h (float_of_int p) in
      let s = Metrics.summarize_histogram h in
      q >= lo && q <= hi
      && s.Metrics.p50 <= s.Metrics.p90
      && s.Metrics.p90 <= s.Metrics.p95
      && s.Metrics.p95 <= s.Metrics.p99
      && s.Metrics.min <= s.Metrics.p50
      && s.Metrics.p99 <= s.Metrics.max)

(* ---- tracer ---- *)

let test_trace_basic () =
  let now = ref 0.0 in
  let t = Trace.create ~clock:(fun () -> !now) () in
  now := 5.0;
  Trace.emit t Trace.Route_hop ~node:1 ~peer:2;
  now := 9.0;
  Trace.emit t ~dur:3.0 ~note:"x" Trace.Notify ~node:4;
  Alcotest.(check int) "emitted" 2 (Trace.emitted t);
  match Trace.spans t with
  | [ a; b ] ->
    Alcotest.(check (float 0.0)) "clock stamped" 5.0 a.Trace.at;
    Alcotest.(check int) "peer" 2 a.Trace.peer;
    Alcotest.(check int) "seq increments" 1 b.Trace.seq;
    Alcotest.(check (float 0.0)) "dur" 3.0 b.Trace.dur;
    Alcotest.(check string) "note" "x" b.Trace.note
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_trace_wraparound () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit t ~at:(float_of_int i) Trace.Ttl_sweep ~node:i
  done;
  Alcotest.(check int) "emitted" 10 (Trace.emitted t);
  Alcotest.(check int) "length capped" 4 (Trace.length t);
  Alcotest.(check int) "dropped" 6 (Trace.dropped t);
  let nodes = List.map (fun s -> s.Trace.node) (Trace.spans t) in
  (* Oldest spans were overwritten; the survivors are the last 4, in
     emission order. *)
  Alcotest.(check (list int)) "newest retained oldest-first" [ 6; 7; 8; 9 ] nodes;
  let seqs = List.map (fun s -> s.Trace.seq) (Trace.spans t) in
  Alcotest.(check (list int)) "seq never reused" [ 6; 7; 8; 9 ] seqs

let test_trace_jsonl () =
  let t = Trace.create () in
  Trace.emit t ~at:1.5 ~dur:0.25 ~peer:7 ~note:"r" Trace.Rtt_probe ~node:3;
  let lines = String.split_on_char '\n' (String.trim (Trace.to_jsonl t)) in
  Alcotest.(check int) "one line per span" 1 (List.length lines);
  match Json.of_string (List.hd lines) with
  | Error e -> Alcotest.failf "span line does not parse: %s" e
  | Ok j ->
    let str k = Option.bind (Json.member k j) Json.to_string_opt in
    let num k = Option.bind (Json.member k j) Json.to_float_opt in
    Alcotest.(check (option string)) "name" (Some "rtt_probe") (str "name");
    Alcotest.(check (option string)) "ph" (Some "X") (str "ph");
    (* Chrome trace events use microseconds; sim time is milliseconds. *)
    Alcotest.(check (option (float 1e-9))) "ts in us" (Some 1500.0) (num "ts");
    Alcotest.(check (option (float 1e-9))) "dur in us" (Some 250.0) (num "dur");
    Alcotest.(check (option (float 1e-9))) "tid is node" (Some 3.0) (num "tid")

let suite =
  [
    Alcotest.test_case "interning canonicalizes labels" `Quick test_interning;
    Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch;
    Alcotest.test_case "counter/gauge/histogram semantics" `Quick test_instruments;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "same seed, identical JSON" `Quick test_same_seed_identical_json;
    Alcotest.test_case "registration order irrelevant" `Quick test_registration_order_irrelevant;
    Alcotest.test_case "JSON schema round-trip" `Quick test_json_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_quantile_bounds;
    Alcotest.test_case "trace basics" `Quick test_trace_basic;
    Alcotest.test_case "trace ring wraparound" `Quick test_trace_wraparound;
    Alcotest.test_case "trace JSONL is Chrome-trace shaped" `Quick test_trace_jsonl;
  ]
