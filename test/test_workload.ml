(* Smoke tests: every registered experiment runs end-to-end at a small
   scale, produces a non-empty table and leaves the global metrics
   registry non-empty (and never shrunk).  Catches regressions anywhere in
   the pipeline (topology, overlays, soft-state, measurement). *)

let smoke_scale = 32

let run_entry (e : Workload.Registry.entry) () =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let instruments_before = Engine.Metrics.size Engine.Metrics.global in
  e.Workload.Registry.run ~scale:smoke_scale ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool)
    (Printf.sprintf "%s produced output" e.Workload.Registry.name)
    true
    (String.length out > 40);
  Alcotest.(check bool)
    (Printf.sprintf "%s output has a table" e.Workload.Registry.name)
    true
    (String.length out > 0
    && (String.index_opt out '=' <> None || String.index_opt out ':' <> None));
  let instruments_after = Engine.Metrics.size Engine.Metrics.global in
  Alcotest.(check bool)
    (Printf.sprintf "%s left metrics registry populated" e.Workload.Registry.name)
    true
    (instruments_after > 0 && instruments_after >= instruments_before)

let test_registry_lookup () =
  Alcotest.(check bool) "find fig10" true (Workload.Registry.find "fig10" <> None);
  Alcotest.(check bool) "find cache" true (Workload.Registry.find "cache" <> None);
  Alcotest.(check bool) "unknown id" true (Workload.Registry.find "nope" = None);
  Alcotest.(check bool) "enough experiments" true (List.length Workload.Registry.all >= 16)

let test_cache_experiment () =
  (* The cache experiment renders a populated table and records its
     per-backend gauges into the global registry. *)
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let before = Engine.Metrics.size Engine.Metrics.global in
  Workload.Exp_cache.run_custom ~scale:smoke_scale ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "table lists every backend" true
    (contains "ecan aware" out && contains "ecan random" out && contains "can greedy" out
   && contains "chord" out && contains "pastry" out && contains "koorde" out);
  let after = Engine.Metrics.size Engine.Metrics.global in
  Alcotest.(check bool) "cache gauges registered" true (after > before);
  let json = Prelude.Json.to_string (Engine.Metrics.to_json Engine.Metrics.global) in
  Alcotest.(check bool) "headline comparison gauges present" true
    (contains "cache_random_over_aware_p99" json && contains "cache_repl_load_ratio" json)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_degree_experiment () =
  (* The degree sweep is registered, renders every (backend, k) cell at a
     real scale, and reruns never shrink the metrics registry (gauges are
     stable instruments, not fresh ones per run). *)
  Alcotest.(check bool) "degree registered" true (Workload.Registry.find "degree" <> None);
  let render () =
    let buf = Buffer.create 1024 in
    let ppf = Format.formatter_of_buffer buf in
    Workload.Exp_degree.run_custom ~scale:2 ppf;
    Format.pp_print_flush ppf ();
    Buffer.contents buf
  in
  let before = Engine.Metrics.size Engine.Metrics.global in
  let out = render () in
  List.iter
    (fun b ->
      Alcotest.(check bool) (b ^ " row present") true (contains b out))
    [ "ecan"; "can"; "chord"; "pastry"; "koorde" ];
  let after_once = Engine.Metrics.size Engine.Metrics.global in
  Alcotest.(check bool) "degree gauges registered" true (after_once > before);
  let _ = render () in
  let after_twice = Engine.Metrics.size Engine.Metrics.global in
  Alcotest.(check bool) "rerun never shrinks the registry" true (after_twice = after_once);
  let json = Prelude.Json.to_string (Engine.Metrics.to_json Engine.Metrics.global) in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "headline gauge for k=%d present" k)
        true
        (contains (Printf.sprintf "degree_random_over_aware_k%d" k) json))
    [ 2; 4; 8; 16 ]

let test_tableout () =
  let t = Workload.Tableout.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Workload.Tableout.add_row t [ "1"; "2" ];
  Alcotest.check_raises "cell count enforced"
    (Invalid_argument "Tableout.add_row: cell count mismatch") (fun () ->
      Workload.Tableout.add_row t [ "only one" ]);
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Workload.Tableout.render ppf t;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "has title" true
    (String.length out > 0 && String.index_opt out 't' <> None);
  Alcotest.(check string) "float cell" "1.500" (Workload.Tableout.cell_f 1.5);
  Alcotest.(check string) "inf cell" "inf" (Workload.Tableout.cell_f infinity)

let test_ctx_cache () =
  let o1 = Workload.Ctx.oracle ~scale:smoke_scale Workload.Ctx.Tsk_large Topology.Transit_stub.Manual in
  let o2 = Workload.Ctx.oracle ~scale:smoke_scale Workload.Ctx.Tsk_large Topology.Transit_stub.Manual in
  Alcotest.(check bool) "cached oracle is shared" true (o1 == o2)

let test_nn_data_curves () =
  let ers, hybrid = Workload.Exp_nn.data ~scale:smoke_scale Workload.Ctx.Tsk_large in
  Alcotest.(check bool) "ers curve non-empty" true (Array.length ers > 0);
  Alcotest.(check bool) "hybrid curve non-empty" true (Array.length hybrid > 0);
  (* averages of best-so-far curves are monotone nonincreasing *)
  let monotone name c =
    for i = 1 to Array.length c - 1 do
      Alcotest.(check bool) (name ^ " monotone") true (c.(i) <= c.(i - 1) +. 1e-9)
    done
  in
  monotone "ers" ers;
  monotone "hybrid" hybrid;
  (* all stretches are >= 1 (found node can never beat the true nearest) *)
  Array.iter (fun v -> Alcotest.(check bool) "ers stretch >= 1" true (v >= 1.0 -. 1e-9)) ers;
  Array.iter (fun v -> Alcotest.(check bool) "hybrid stretch >= 1" true (v >= 1.0 -. 1e-9)) hybrid

let suite =
  Alcotest.test_case "nn data curves" `Quick test_nn_data_curves
  :: Alcotest.test_case "registry lookup" `Quick test_registry_lookup
  :: Alcotest.test_case "cache experiment output & gauges" `Quick test_cache_experiment
  :: Alcotest.test_case "degree experiment output & gauges" `Quick test_degree_experiment
  :: Alcotest.test_case "table rendering" `Quick test_tableout
  :: Alcotest.test_case "context cache" `Quick test_ctx_cache
  :: List.map
       (fun e ->
         Alcotest.test_case
           (Printf.sprintf "smoke: %s" e.Workload.Registry.name)
           `Slow (run_entry e))
       Workload.Registry.all
