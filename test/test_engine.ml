(* Tests for the discrete-event engine. *)

module Sim = Engine.Sim

let test_fires_in_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~delay:5.0 (fun () -> log := 5 :: !log));
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Sim.schedule sim ~delay:3.0 (fun () -> log := 3 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last event" 5.0 (Sim.now sim)

let test_fifo_at_same_instant () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~delay:2.0 (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let timer = Sim.schedule sim ~delay:1.0 (fun () -> fired := true) in
  Sim.cancel timer;
  Sim.run sim;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         log := (1.0, Sim.now sim) :: !log;
         ignore (Sim.schedule sim ~delay:2.0 (fun () -> log := (3.0, Sim.now sim) :: !log))));
  Sim.run sim;
  Alcotest.(check int) "two events" 2 (List.length !log);
  List.iter (fun (want, got) -> Alcotest.(check (float 0.0)) "clock" want got) !log

let test_periodic () =
  let sim = Sim.create () in
  let count = ref 0 in
  let timer = Sim.every sim ~period:10.0 (fun () -> incr count) in
  Sim.run ~until:35.0 sim;
  Alcotest.(check int) "three firings by t=35" 3 !count;
  Sim.cancel timer;
  Sim.run ~until:100.0 sim;
  Alcotest.(check int) "no firings after cancel" 3 !count

let test_periodic_cancel_mid_stream () =
  let sim = Sim.create () in
  let count = ref 0 in
  let timer = ref None in
  timer :=
    Some
      (Sim.every sim ~period:1.0 (fun () ->
           incr count;
           if !count = 3 then Option.iter Sim.cancel !timer));
  Sim.run ~until:10.0 sim;
  Alcotest.(check int) "self-cancel after 3" 3 !count

(* Regression: a periodic timer cancelled from inside its own run callback
   must not re-enqueue — the very first firing is its last. *)
let test_periodic_cancel_on_first_fire () =
  let sim = Sim.create () in
  let count = ref 0 in
  let timer = ref None in
  timer :=
    Some
      (Sim.every sim ~period:7.0 (fun () ->
           incr count;
           Option.iter Sim.cancel !timer));
  Sim.run ~until:1000.0 sim;
  Alcotest.(check int) "exactly one firing" 1 !count;
  Sim.run sim;
  Alcotest.(check int) "queue drains without re-firing" 1 !count;
  Alcotest.(check int) "nothing left pending" 0 (Sim.pending sim)

(* Regression: cancelling from another event at the same instant — queued
   before the periodic's occurrence — must suppress that occurrence. *)
let test_periodic_cancel_same_instant () =
  let sim = Sim.create () in
  let count = ref 0 in
  let timer = ref None in
  ignore (Sim.schedule sim ~delay:5.0 (fun () -> Option.iter Sim.cancel !timer));
  timer := Some (Sim.every sim ~period:5.0 (fun () -> incr count));
  Sim.run ~until:50.0 sim;
  Alcotest.(check int) "cancelled before its first occurrence" 0 !count

let test_run_until_advances_clock () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:50.0 ignore);
  Sim.run ~until:20.0 sim;
  Alcotest.(check (float 0.0)) "clock advanced to the limit" 20.0 (Sim.now sim);
  Alcotest.(check int) "future event still queued" 1 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check (float 0.0)) "then runs" 50.0 (Sim.now sim)

let test_rejects_past () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:5.0 ignore);
  Sim.run sim;
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> ignore (Sim.schedule sim ~delay:(-1.0) ignore));
  Alcotest.check_raises "past absolute time"
    (Invalid_argument "Sim.schedule_at: time in the past") (fun () ->
      ignore (Sim.schedule_at sim 1.0 ignore))

let test_step () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:1.0 ignore);
  ignore (Sim.schedule sim ~delay:2.0 ignore);
  Alcotest.(check bool) "step 1" true (Sim.step sim);
  Alcotest.(check bool) "step 2" true (Sim.step sim);
  Alcotest.(check bool) "empty" false (Sim.step sim)

let suite =
  [
    Alcotest.test_case "time order" `Quick test_fires_in_time_order;
    Alcotest.test_case "fifo at same instant" `Quick test_fifo_at_same_instant;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "periodic" `Quick test_periodic;
    Alcotest.test_case "periodic self-cancel" `Quick test_periodic_cancel_mid_stream;
    Alcotest.test_case "periodic self-cancel on first fire" `Quick
      test_periodic_cancel_on_first_fire;
    Alcotest.test_case "periodic cancelled at same instant" `Quick
      test_periodic_cancel_same_instant;
    Alcotest.test_case "run ~until" `Quick test_run_until_advances_clock;
    Alcotest.test_case "rejects past times" `Quick test_rejects_past;
    Alcotest.test_case "manual stepping" `Quick test_step;
  ]
