(* Tests for the CAN overlay: joins, zone invariants, routing, leaves. *)

module Can_overlay = Can.Overlay
module Point = Geometry.Point
module Zone = Geometry.Zone
module Rng = Prelude.Rng

let check_ok = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let build ~dims ~n ~seed =
  let rng = Rng.create seed in
  let t = Can_overlay.create ~dims 0 in
  for id = 1 to n - 1 do
    ignore (Can_overlay.join t id (Point.random rng dims))
  done;
  (t, rng)

let test_single_node () =
  let t = Can_overlay.create ~dims:2 7 in
  Alcotest.(check int) "size" 1 (Can_overlay.size t);
  Alcotest.(check bool) "owns everything" true
    (Zone.equal (Can_overlay.node t 7).Can_overlay.zone (Zone.full 2));
  Alcotest.(check int) "owner of any point" 7 (Can_overlay.owner_of t [| 0.9; 0.1 |]);
  check_ok (Can_overlay.check_invariants t)

let test_first_split () =
  let t = Can_overlay.create ~dims:2 0 in
  ignore (Can_overlay.join t 1 [| 0.75; 0.5 |]);
  (* Split along dim 0: node 1 (point in upper half) takes [0.5,1). *)
  let z1 = (Can_overlay.node t 1).Can_overlay.zone in
  Alcotest.(check bool) "newcomer owns its point" true (Zone.contains z1 [| 0.75; 0.5 |]);
  Alcotest.(check (float 1e-12)) "half volume" 0.5 (Zone.volume z1);
  Alcotest.(check (list int)) "neighbors" [ 1 ] (Can_overlay.node t 0).Can_overlay.neighbors;
  check_ok (Can_overlay.check_invariants t)

let test_join_invariants_many () =
  let t, _ = build ~dims:2 ~n:120 ~seed:42 in
  Alcotest.(check int) "size" 120 (Can_overlay.size t);
  check_ok (Can_overlay.check_invariants t)

let test_join_invariants_3d () =
  let t, _ = build ~dims:3 ~n:80 ~seed:43 in
  check_ok (Can_overlay.check_invariants t)

let test_join_rejects_duplicate () =
  let t, _ = build ~dims:2 ~n:5 ~seed:1 in
  Alcotest.check_raises "duplicate id" (Invalid_argument "Can.join: node already a member")
    (fun () -> ignore (Can_overlay.join t 3 [| 0.5; 0.5 |]))

let test_owner_of_agrees_with_zones () =
  let t, rng = build ~dims:2 ~n:100 ~seed:44 in
  for _ = 1 to 300 do
    let p = Point.random rng 2 in
    let owner = Can_overlay.owner_of t p in
    Alcotest.(check bool) "owner zone contains point" true
      (Zone.contains (Can_overlay.node t owner).Can_overlay.zone p)
  done

let test_route_reaches_owner () =
  let t, rng = build ~dims:2 ~n:150 ~seed:45 in
  let ids = Can_overlay.node_ids t in
  for _ = 1 to 200 do
    let src = Rng.pick rng ids in
    let p = Point.random rng 2 in
    match Can_overlay.route t ~src p with
    | None -> Alcotest.fail "routing failed"
    | Some hops ->
      Alcotest.(check int) "starts at src" src (List.hd hops);
      let dst = List.nth hops (List.length hops - 1) in
      Alcotest.(check int) "ends at owner" (Can_overlay.owner_of t p) dst;
      (* consecutive hops are CAN neighbors *)
      let rec check_links = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool) "hop uses a link" true
            (List.mem b (Can_overlay.node t a).Can_overlay.neighbors);
          check_links rest
        | _ -> ()
      in
      check_links hops
  done

let test_route_from_owner_is_trivial () =
  let t, _ = build ~dims:2 ~n:50 ~seed:46 in
  let p = [| 0.3; 0.3 |] in
  let owner = Can_overlay.owner_of t p in
  Alcotest.(check (option (list int))) "single hop" (Some [ owner ])
    (Can_overlay.route t ~src:owner p)

let test_path_of_point () =
  let t = Can_overlay.create ~dims:2 0 in
  let bits = Can_overlay.path_of_point t ~depth:4 [| 0.8; 0.2 |] in
  (* dim0: 0.8 -> upper (1); dim1: 0.2 -> lower (0);
     dim0 within [0.5,1): 0.8 -> [0.75..): upper (1); dim1 within [0,0.5): 0.2 lower (0). *)
  Alcotest.(check (array int)) "bits" [| 1; 0; 1; 0 |] bits

let test_zone_of_path_roundtrip () =
  let rng = Rng.create 48 in
  let t = Can_overlay.create ~dims:2 0 in
  for _ = 1 to 100 do
    let p = Point.random rng 2 in
    let bits = Can_overlay.path_of_point t ~depth:10 p in
    let z = Can_overlay.zone_of_path ~dims:2 bits in
    Alcotest.(check bool) "zone of path contains point" true (Zone.contains z p)
  done

let test_members_with_prefix () =
  let t, _ = build ~dims:2 ~n:64 ~seed:49 in
  let all = Can_overlay.members_with_prefix t [||] in
  Alcotest.(check int) "root prefix has everyone" 64 (Array.length all);
  let left = Can_overlay.members_with_prefix t [| 0 |] in
  let right = Can_overlay.members_with_prefix t [| 1 |] in
  Alcotest.(check int) "halves partition the membership" 64
    (Array.length left + Array.length right);
  Array.iter
    (fun id ->
      let n = Can_overlay.node t id in
      Alcotest.(check int) "left members have bit 0" 0 n.Can_overlay.path.(0))
    left

let test_leave_simple () =
  let t = Can_overlay.create ~dims:2 0 in
  ignore (Can_overlay.join t 1 [| 0.75; 0.5 |]);
  ignore (Can_overlay.leave t 1);
  Alcotest.(check int) "size" 1 (Can_overlay.size t);
  Alcotest.(check bool) "survivor owns everything" true
    (Zone.equal (Can_overlay.node t 0).Can_overlay.zone (Zone.full 2));
  check_ok (Can_overlay.check_invariants t)

let test_leave_many () =
  let t, rng = build ~dims:2 ~n:80 ~seed:50 in
  let ids = Array.to_list (Can_overlay.node_ids t) in
  let to_remove = Prelude.Rng.sample rng 40 (Array.of_list ids) in
  Array.iter
    (fun id ->
      ignore (Can_overlay.leave t id);
      Alcotest.(check bool) "membership dropped" false (Can_overlay.mem t id))
    to_remove;
  Alcotest.(check int) "size" 40 (Can_overlay.size t);
  check_ok (Can_overlay.check_invariants t)

let test_leave_everyone () =
  let t, _ = build ~dims:2 ~n:20 ~seed:51 in
  let ids = Can_overlay.node_ids t in
  Array.iteri
    (fun i id ->
      if i < Array.length ids - 1 then begin
        ignore (Can_overlay.leave t id);
        check_ok (Can_overlay.check_invariants t)
      end)
    ids;
  Alcotest.(check int) "one left" 1 (Can_overlay.size t)

let test_churn_interleaved () =
  let rng = Rng.create 52 in
  let t = Can_overlay.create ~dims:2 0 in
  let next_id = ref 1 in
  let members = ref [ 0 ] in
  for _ = 1 to 300 do
    if List.length !members < 3 || Rng.chance rng 0.6 then begin
      let id = !next_id in
      incr next_id;
      ignore (Can_overlay.join t id (Point.random rng 2));
      members := id :: !members
    end
    else begin
      let arr = Array.of_list !members in
      let victim = Rng.pick rng arr in
      ignore (Can_overlay.leave t victim);
      members := List.filter (fun m -> m <> victim) !members
    end
  done;
  Alcotest.(check int) "tracked membership" (List.length !members) (Can_overlay.size t);
  check_ok (Can_overlay.check_invariants t)

(* Generic hop-bound and churn-invariant properties live in the shared
   backend-conformance suite (test_conformance.ml); the remaining route
   test here asserts the CAN-specific neighbor-link structure. *)
let suite =
  [
    Alcotest.test_case "single node" `Quick test_single_node;
    Alcotest.test_case "first split" `Quick test_first_split;
    Alcotest.test_case "many joins keep invariants" `Quick test_join_invariants_many;
    Alcotest.test_case "3-d joins keep invariants" `Quick test_join_invariants_3d;
    Alcotest.test_case "duplicate join rejected" `Quick test_join_rejects_duplicate;
    Alcotest.test_case "owner_of agrees with zones" `Quick test_owner_of_agrees_with_zones;
    Alcotest.test_case "routing reaches the owner" `Quick test_route_reaches_owner;
    Alcotest.test_case "routing from owner" `Quick test_route_from_owner_is_trivial;
    Alcotest.test_case "path of point" `Quick test_path_of_point;
    Alcotest.test_case "zone of path contains point" `Quick test_zone_of_path_roundtrip;
    Alcotest.test_case "prefix membership" `Quick test_members_with_prefix;
    Alcotest.test_case "leave (pair)" `Quick test_leave_simple;
    Alcotest.test_case "leave (many)" `Quick test_leave_many;
    Alcotest.test_case "leave everyone" `Quick test_leave_everyone;
    Alcotest.test_case "interleaved churn" `Slow test_churn_interleaved;
  ]
