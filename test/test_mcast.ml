(* Engine.Mcast + Workload.Exp_mcast: tree invariants under seeded churn
   storms, placement/relay semantics on a toy line network, regraft
   latency through the trace analyzer, and the experiment's determinism
   contract (same-seed byte-identical metrics, domains 1 vs 4). *)

module Mcast = Engine.Mcast
module Trace = Engine.Trace
module Repair = Engine.Repair
module Metrics = Engine.Metrics
module Rng = Prelude.Rng
module Json = Prelude.Json

(* ------------------------------------------------------------------ *)
(* Toy line backend                                                    *)
(* ------------------------------------------------------------------ *)

(* [n] nodes on a line, latency 10 ms per unit; [gone] nodes have left.
   Routes walk the line (through gone nodes — the line is the physical
   path, membership is an overlay property), candidates are the nearest
   live members. *)
let line_backend ?(gone = fun _ -> false) ?(candidates = 4) n =
  let member i = i >= 0 && i < n && not (gone i) in
  {
    Mcast.name = "line";
    member;
    route_to =
      (fun ~src ~dst ->
        if not (member dst) then None
        else begin
          let step = if dst >= src then 1 else -1 in
          let rec go acc u =
            if u = dst then List.rev (u :: acc) else go (u :: acc) (u + step)
          in
          Some (go [] src)
        end);
    candidates =
      (fun ~node ~exclude ->
        List.init n (fun c -> c)
        |> List.filter (fun c -> member c && c <> node && not (List.mem c exclude))
        |> List.map (fun c -> (abs (c - node), c))
        |> List.sort compare
        |> List.filteri (fun i _ -> i < candidates)
        |> List.map snd);
    publish_load = (fun ~node:_ ~load:_ -> ());
  }

let link u v = 10.0 *. Float.abs (float_of_int (u - v))

(* ------------------------------------------------------------------ *)
(* Validation and basic placement                                      *)
(* ------------------------------------------------------------------ *)

let test_validation () =
  let backend = line_backend 8 in
  Alcotest.check_raises "degree < 1" (Invalid_argument "Mcast.create: degree must be >= 1")
    (fun () ->
      ignore
        (Mcast.create
           ~config:{ Mcast.default_config with Mcast.degree = 0 }
           ~link ~root:0 backend));
  Alcotest.check_raises "root not a member"
    (Invalid_argument "Mcast.create: root is not a member") (fun () ->
      ignore (Mcast.create ~link ~root:99 backend));
  let t = Mcast.create ~link ~root:0 backend in
  Alcotest.check_raises "subscribe non-member"
    (Invalid_argument "Mcast.subscribe: not a member") (fun () -> Mcast.subscribe t 99);
  Mcast.subscribe t 3;
  Alcotest.check_raises "double subscribe"
    (Invalid_argument "Mcast.subscribe: already subscribed") (fun () -> Mcast.subscribe t 3);
  Alcotest.check_raises "drop the root"
    (Invalid_argument "Mcast.drop_member: cannot drop the root") (fun () ->
      ignore (Mcast.drop_member t 0));
  Alcotest.check_raises "regraft a non-orphan"
    (Invalid_argument "Mcast.regraft: not an orphan") (fun () -> Mcast.regraft t 3);
  Alcotest.(check bool) "drop of an absent node is a no-op" false (Mcast.drop_member t 5)

let test_aware_places_near () =
  (* Root at 0; the first subscriber lands under the root, and a far
     subscriber prefers the in-tree node nearest to it once the tree
     offers a closer spare than the root. *)
  let backend = line_backend ~candidates:0 8 in
  let t =
    Mcast.create ~config:{ Mcast.default_config with Mcast.degree = 2 } ~link ~root:0 backend
  in
  Mcast.subscribe t 1;
  Alcotest.(check (option int)) "first under the root" (Some 0) (Mcast.parent_of t 1);
  Mcast.subscribe t 7;
  Alcotest.(check (option int)) "far node under its nearest spare" (Some 1)
    (Mcast.parent_of t 7);
  Mcast.subscribe t 6;
  Alcotest.(check (option int)) "joins the closest subtree" (Some 7) (Mcast.parent_of t 6);
  Alcotest.(check bool) "invariants hold" true (Mcast.check_invariants t = Ok ());
  Alcotest.(check int) "no relays without candidates" 0 (Mcast.relays_recruited t)

let test_relay_recruitment () =
  (* With map candidates enabled, subscribing 7 while the tree only has
     0 and 1 recruits a strictly closer out-of-tree relay (6) instead of
     a direct long edge. *)
  let backend = line_backend 8 in
  let t =
    Mcast.create ~config:{ Mcast.default_config with Mcast.degree = 2 } ~link ~root:0 backend
  in
  Mcast.subscribe t 1;
  Mcast.subscribe t 7;
  Alcotest.(check bool) "a relay was recruited" true (Mcast.relays_recruited t >= 1);
  let relays = Mcast.relays t in
  Alcotest.(check bool) "relay is interior, not a subscriber" true
    (List.for_all (fun r -> not (List.mem r (Mcast.subscribers t))) relays);
  (match Mcast.parent_of t 7 with
  | Some p -> Alcotest.(check bool) "7 hangs under the relay" true (List.mem p relays)
  | None -> Alcotest.fail "7 has no parent");
  Alcotest.(check bool) "invariants hold" true (Mcast.check_invariants t = Ok ());
  (* The relay later joins the group: promoted in place, not re-attached. *)
  let members_before = Mcast.members t in
  List.iter (fun r -> Mcast.subscribe t r) relays;
  Alcotest.(check (list int)) "promotion adds no vertex" members_before (Mcast.members t);
  Alcotest.(check bool) "promoted relays are subscribers now" true
    (List.for_all (fun r -> List.mem r (Mcast.subscribers t)) relays)

let test_random_policy_respects_degree () =
  let backend = line_backend ~candidates:0 32 in
  let t =
    Mcast.create
      ~config:{ Mcast.degree = 2; policy = Mcast.Random; seed = 9 }
      ~link ~root:0 backend
  in
  for i = 1 to 31 do
    Mcast.subscribe t i
  done;
  Alcotest.(check bool) "invariants (degree bound) hold" true
    (Mcast.check_invariants t = Ok ());
  Alcotest.(check int) "no relays under the random policy" 0 (Mcast.relays_recruited t);
  let d = Mcast.publish t in
  Alcotest.(check int) "everyone delivered" 31 (List.length d.Mcast.delivered)

(* ------------------------------------------------------------------ *)
(* Drop, orphanhood, regraft, and the trace/analyzer loop              *)
(* ------------------------------------------------------------------ *)

let test_drop_regraft_latency () =
  let now = ref 0.0 in
  let tracer = Trace.create ~capacity:1024 ~clock:(fun () -> !now) () in
  let gone = Hashtbl.create 4 in
  let backend = line_backend ~gone:(Hashtbl.mem gone) 10 in
  let t =
    Mcast.create ~trace:tracer
      ~clock:(fun () -> !now)
      ~config:{ Mcast.default_config with Mcast.degree = 2 }
      ~link ~root:0 backend
  in
  List.iter (Mcast.subscribe t) [ 1; 2; 3; 4 ];
  (* Find an interior subscriber with children; drop it at t=100. *)
  let victim =
    match List.find_opt (fun n -> Mcast.children t n <> []) (Mcast.subscribers t) with
    | Some v -> v
    | None -> Alcotest.fail "expected an interior subscriber"
  in
  let expected_orphans = Mcast.children t victim in
  now := 100.0;
  (* The victim crashed: record the fault the analyzer will attribute. *)
  Trace.emit tracer ~note:"crash" Trace.Fault_inject ~node:victim;
  Hashtbl.replace gone victim ();
  Alcotest.(check bool) "drop detaches" true (Mcast.drop_member t victim);
  Alcotest.(check (list int)) "children orphaned" expected_orphans (Mcast.orphans t);
  let d = Mcast.publish t in
  Alcotest.(check bool) "orphan subtree missed while detached" true
    (List.for_all
       (fun o -> List.mem o d.Mcast.missed || not (List.mem o (Mcast.subscribers t)))
       expected_orphans);
  now := 450.0;
  List.iter (Mcast.regraft t) (Mcast.orphans t);
  Alcotest.(check (list int)) "no orphans left" [] (Mcast.orphans t);
  Alcotest.(check bool) "invariants after regraft" true (Mcast.check_invariants t = Ok ());
  let d2 = Mcast.publish t in
  Alcotest.(check int) "full delivery after regraft" (List.length (Mcast.subscribers t))
    (List.length d2.Mcast.delivered);
  (* The regraft spans carry the dead parent and the orphanhood duration,
     and the analyzer attributes them to the crash. *)
  let spans = Trace.spans tracer in
  let regraft_spans = List.filter (fun s -> s.Trace.kind = Trace.Mcast_regraft) spans in
  Alcotest.(check int) "one span per orphan" (List.length expected_orphans)
    (List.length regraft_spans);
  List.iter
    (fun s ->
      Alcotest.(check string) "victim tag" (Printf.sprintf "dead:%d" victim) s.Trace.note;
      Alcotest.(check (float 1e-9)) "orphanhood duration" 350.0 s.Trace.dur)
    regraft_spans;
  let report = Repair.analyze spans in
  Alcotest.(check int) "analyzer found the regrafts"
    (List.length expected_orphans)
    report.Repair.regraft.Repair.n;
  Alcotest.(check (float 1e-9)) "regraft p50 is the orphanhood" 350.0
    report.Repair.regraft.Repair.p50

(* ------------------------------------------------------------------ *)
(* qcheck: invariants across seeded churn storms                       *)
(* ------------------------------------------------------------------ *)

let seed_gen = QCheck.int_range 0 100_000

(* A random walk of subscribe / drop / regraft / publish on the line:
   after every operation the tree is connected, degree-bounded and
   acyclic, and every publish partitions the subscribers into delivered
   and missed. *)
let qcheck_invariants_under_churn =
  QCheck.Test.make ~name:"mcast: invariants survive seeded churn storms" ~count:60
    QCheck.(triple seed_gen (int_range 1 4) (bool))
    (fun (seed, degree, random_policy) ->
      let n = 24 in
      let rng = Rng.create (seed + 13) in
      let now = ref 0.0 in
      let gone = Hashtbl.create 8 in
      let backend = line_backend ~gone:(Hashtbl.mem gone) n in
      let policy = if random_policy then Mcast.Random else Mcast.Aware in
      let t =
        Mcast.create
          ~clock:(fun () -> !now)
          ~config:{ Mcast.degree; policy; seed }
          ~link ~root:0 backend
      in
      let ok = ref true in
      let check () =
        (match Mcast.check_invariants t with Ok () -> () | Error _ -> ok := false);
        let d = Mcast.publish t in
        let subs = Mcast.subscribers t in
        let delivered = List.map (fun (s, _, _) -> s) d.Mcast.delivered in
        let covered = List.sort compare (delivered @ d.Mcast.missed) in
        if covered <> subs then ok := false;
        if d.Mcast.traversals < d.Mcast.link_count then ok := false;
        if d.Mcast.cost_ms < 0.0 then ok := false
      in
      for _ = 1 to 60 do
        now := !now +. 10.0;
        let members = Mcast.members t in
        let orphans = Mcast.orphans t in
        let roll = Rng.int rng 100 in
        if roll < 45 then begin
          (* subscribe a live node that is not yet subscribed *)
          let fresh =
            List.init n (fun i -> i)
            |> List.filter (fun i ->
                   i <> 0
                   && (not (Hashtbl.mem gone i))
                   && not (List.mem i (Mcast.subscribers t)))
          in
          match fresh with
          | [] -> ()
          | l -> Mcast.subscribe t (Rng.pick rng (Array.of_list l))
        end
        else if roll < 70 then begin
          (* drop a random non-root tree member *)
          match List.filter (fun m -> m <> 0) members with
          | [] -> ()
          | l ->
            let v = Rng.pick rng (Array.of_list l) in
            Hashtbl.replace gone v ();
            ignore (Mcast.drop_member t v)
        end
        else if roll < 90 then begin
          match orphans with
          | [] -> ()
          | l -> Mcast.regraft t (Rng.pick rng (Array.of_list l))
        end
        else check ()
      done;
      (* Drain: every orphan can always re-graft (spare capacity never
         runs out for degree >= 1), ending with a fully connected tree. *)
      let rec drain () =
        match Mcast.orphans t with
        | [] -> ()
        | o :: _ ->
          Mcast.regraft t o;
          drain ()
      in
      drain ();
      check ();
      !ok && Mcast.orphans t = [] && Mcast.check_invariants t = Ok ())

let qcheck_same_seed_same_tree =
  QCheck.Test.make ~name:"mcast: equal seeds build identical random trees" ~count:40
    seed_gen
    (fun seed ->
      let build () =
        let backend = line_backend ~candidates:0 16 in
        let t =
          Mcast.create
            ~config:{ Mcast.degree = 2; policy = Mcast.Random; seed }
            ~link ~root:0 backend
        in
        for i = 1 to 15 do
          Mcast.subscribe t i
        done;
        List.map (fun m -> (m, Mcast.parent_of t m)) (Mcast.members t)
      in
      build () = build ())

(* ------------------------------------------------------------------ *)
(* Experiment-level determinism (DESIGN section 12)                    *)
(* ------------------------------------------------------------------ *)

let exp_scale = 32

let test_exp_mcast_ordering () =
  match Workload.Exp_mcast.data ~scale:exp_scale ~metrics:(Metrics.create ()) () with
  | aware :: random :: _ ->
    let open Workload.Exp_mcast in
    Alcotest.(check string) "row order" "ecan aware" aware.label;
    Alcotest.(check string) "row order" "ecan random" random.label;
    Alcotest.(check bool) "equal static delivery counts" true
      (aware.static_delivered = random.static_delivered);
    (* p50 latency is noisy at this tiny scale (few dozen samples); the
       tail, the stretch and the aggregate network cost are the orderings
       the placement policy actually guarantees. *)
    let pct a p = Prelude.Stats.percentile a p in
    Alcotest.(check bool) "aware p99 <= random p99" true
      (pct aware.static_lat 99.0 <= pct random.static_lat 99.0);
    Alcotest.(check bool) "aware stretch p50 <= random stretch p50" true
      (pct aware.static_stretch 50.0 <= pct random.static_stretch 50.0);
    Alcotest.(check bool) "aware network cost <= random network cost" true
      (aware.static_cost_ms <= random.static_cost_ms);
    Alcotest.(check bool) "churn repaired something somewhere" true
      (aware.regrafts + random.regrafts > 0)
  | _ -> Alcotest.fail "exp_mcast: expected the ecan pair first"

let test_exp_mcast_metrics_deterministic () =
  let dump () =
    let metrics = Metrics.create () in
    let stats = Workload.Exp_mcast.data ~scale:exp_scale ~metrics () in
    List.iter (Workload.Exp_mcast.record_stats metrics) stats;
    (stats, Json.to_string (Metrics.to_json metrics))
  in
  let stats1, json1 = dump () in
  let stats2, json2 = dump () in
  Alcotest.(check bool) "stats identical" true (stats1 = stats2);
  Alcotest.(check string) "metrics registry byte-identical" json1 json2;
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mcast instruments registered" true
    (contains "mcast_delivered" json1
    && contains "mcast_delivery_ms" json1
    && contains "mcast_link_stress" json1
    && contains "mcast_regrafts" json1)

let test_exp_mcast_domains_identical () =
  (* The determinism contract: pinning the store's domain pool at 1 or 4
     must not change a byte of the metrics dump. *)
  let dump domains =
    let metrics = Metrics.create () in
    let stats = Workload.Exp_mcast.data ~scale:exp_scale ~domains ~metrics () in
    List.iter (Workload.Exp_mcast.record_stats metrics) stats;
    Json.to_string (Metrics.to_json metrics)
  in
  Alcotest.(check string) "domains 1 vs 4 byte-identical" (dump 1) (dump 4)

let suite =
  [
    Alcotest.test_case "create/subscribe/drop/regraft validation" `Quick test_validation;
    Alcotest.test_case "aware placement follows proximity" `Quick test_aware_places_near;
    Alcotest.test_case "map candidates recruit relays" `Quick test_relay_recruitment;
    Alcotest.test_case "random policy holds the degree bound" `Quick
      test_random_policy_respects_degree;
    Alcotest.test_case "drop/regraft latency reaches the analyzer" `Quick
      test_drop_regraft_latency;
    QCheck_alcotest.to_alcotest qcheck_invariants_under_churn;
    QCheck_alcotest.to_alcotest qcheck_same_seed_same_tree;
    Alcotest.test_case "exp: aware beats random at equal delivery" `Slow
      test_exp_mcast_ordering;
    Alcotest.test_case "exp: metrics byte-identical across same-seed runs" `Slow
      test_exp_mcast_metrics_deterministic;
    Alcotest.test_case "exp: metrics byte-identical across domain pools" `Slow
      test_exp_mcast_domains_identical;
  ]
