(* Unit and property tests for the prelude library: RNG, stats, heap. *)

module Rng = Prelude.Rng
module Stats = Prelude.Stats
module Heap = Prelude.Heap

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  let x = Rng.bits64 child and y = Rng.bits64 a in
  Alcotest.(check bool) "split stream differs from parent" true (x <> y)

let test_rng_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_uniform () =
  let rng = Rng.create 11 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let v = Rng.int rng 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (frac > 0.23 && frac < 0.27))
    counts

let test_rng_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_int_in () =
  let rng = Rng.create 9 in
  for _ = 1 to 500 do
    let v = Rng.int_in rng (-3) 3 in
    Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3)
  done

let test_rng_sample_distinct () =
  let rng = Rng.create 13 in
  let arr = Array.init 20 (fun i -> i) in
  for _ = 1 to 100 do
    let s = Rng.sample rng 8 arr in
    Alcotest.(check int) "size" 8 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    for i = 1 to 7 do
      Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
    done
  done

let test_rng_sample_full () =
  let rng = Rng.create 13 in
  let arr = [| 1; 2; 3 |] in
  let s = Rng.sample rng 3 arr in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" arr sorted

let test_rng_shuffle_permutation () =
  let rng = Rng.create 17 in
  let arr = Array.init 50 (fun i -> i) in
  let shuffled = Array.copy arr in
  Rng.shuffle rng shuffled;
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" arr sorted

let test_rng_exponential () =
  let rng = Rng.create 19 in
  let acc = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Rng.exponential rng 2.0 in
    Alcotest.(check bool) "positive" true (v >= 0.0);
    acc := !acc +. v
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (mean -. 0.5) < 0.02)

let test_stats_mean_var () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Stats.stddev xs);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Stats.mean [||])

let test_stats_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2.0 (Stats.percentile xs 25.0);
  (* the input must not be mutated *)
  Alcotest.(check (array (float 0.0))) "input untouched" [| 5.0; 1.0; 3.0; 2.0; 4.0 |] xs

let test_stats_percentile_edge_cases () =
  (* Empty: the summarize convention, 0, not an index error. *)
  Alcotest.(check (float 0.0)) "empty" 0.0 (Stats.percentile [||] 50.0);
  Alcotest.(check (float 0.0)) "empty p0" 0.0 (Stats.percentile [||] 0.0);
  Alcotest.(check (float 0.0)) "empty p100" 0.0 (Stats.percentile [||] 100.0);
  (* Singleton: every percentile is the single value. *)
  Alcotest.(check (float 0.0)) "singleton p0" 7.5 (Stats.percentile [| 7.5 |] 0.0);
  Alcotest.(check (float 0.0)) "singleton p50" 7.5 (Stats.percentile [| 7.5 |] 50.0);
  Alcotest.(check (float 0.0)) "singleton p100" 7.5 (Stats.percentile [| 7.5 |] 100.0);
  (* Out-of-range p raises, including NaN (which evades < comparisons). *)
  let rejects p =
    Alcotest.check_raises
      (Printf.sprintf "p=%f rejected" p)
      (Invalid_argument "Stats.percentile: p out of [0,100]")
      (fun () -> ignore (Stats.percentile [| 1.0; 2.0 |] p))
  in
  rejects (-0.001);
  rejects 100.001;
  rejects Float.nan

let test_stats_summary () =
  let s = Stats.summarize (Array.init 101 (fun i -> float_of_int i)) in
  Alcotest.(check int) "count" 101 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 50.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "p50" 50.0 s.Stats.p50;
  Alcotest.(check (float 1e-9)) "p90" 90.0 s.Stats.p90;
  Alcotest.(check (float 1e-9)) "min" 0.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 100.0 s.Stats.max

let test_stats_online_matches_batch () =
  let rng = Rng.create 23 in
  let xs = Array.init 500 (fun _ -> Rng.float rng 10.0) in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  Alcotest.(check (float 1e-9)) "online mean" (Stats.mean xs) (Stats.Online.mean o);
  Alcotest.(check (float 1e-6)) "online var" (Stats.variance xs) (Stats.Online.variance o)

let test_heap_ordering () =
  let h = Heap.create () in
  let rng = Rng.create 29 in
  let n = 1000 in
  for i = 0 to n - 1 do
    Heap.push h (Rng.float rng 100.0) i
  done;
  Alcotest.(check int) "length" n (Heap.length h);
  let last = ref neg_infinity in
  for _ = 1 to n do
    match Heap.pop h with
    | None -> Alcotest.fail "premature empty"
    | Some (p, _) ->
      Alcotest.(check bool) "nondecreasing" true (p >= !last);
      last := p
  done;
  Alcotest.(check bool) "empty at end" true (Heap.is_empty h)

let test_heap_peek () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty peek" true (Heap.peek h = None);
  Heap.push h 2.0 "b";
  Heap.push h 1.0 "a";
  (match Heap.peek h with
  | Some (p, v) ->
    Alcotest.(check (float 0.0)) "peek prio" 1.0 p;
    Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "peek on non-empty");
  Alcotest.(check int) "peek does not pop" 2 (Heap.length h)

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.0) small_int))
    (fun entries ->
      let h = Heap.create () in
      List.iter (fun (p, v) -> Heap.push h p v) entries;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc) in
      let popped = drain [] in
      let sorted = List.sort compare (List.map fst entries) in
      popped = sorted)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int uniformity" `Quick test_rng_int_uniform;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng int_in" `Quick test_rng_int_in;
    Alcotest.test_case "rng sample distinct" `Quick test_rng_sample_distinct;
    Alcotest.test_case "rng sample full population" `Quick test_rng_sample_full;
    Alcotest.test_case "rng shuffle is a permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential;
    Alcotest.test_case "stats mean/var" `Quick test_stats_mean_var;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats percentile edge cases" `Quick test_stats_percentile_edge_cases;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats online = batch" `Quick test_stats_online_matches_batch;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    QCheck_alcotest.to_alcotest qcheck_heap_sorts;
  ]
